#include "sim/run_record.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace saer {

std::string format_double_compact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

std::string format_double_roundtrip(double value) {
  char buf[64];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) return buf;
  }
  // %.17g round-trips every finite double; reachable only for inf/nan,
  // which the sweep never produces but which should still print something.
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

RunRecord RunRecord::from_result(const ProtocolParams& params,
                                 const RunResult& result) {
  RunRecord rec;
  rec.params = params;
  rec.completed = result.completed;
  rec.rounds = result.rounds;
  rec.total_balls = result.total_balls;
  rec.alive_balls = result.alive_balls;
  rec.work_messages = result.work_messages;
  rec.max_load = result.max_load;
  rec.burned_servers = result.burned_servers;
  rec.trace = result.trace;
  return rec;
}

void write_run_record(std::ostream& os, const RunRecord& rec) {
  os << "saer-run 1\n";
  os << "protocol " << to_string(rec.params.protocol) << '\n';
  os << "d " << rec.params.d << '\n';
  os << "c " << rec.params.c << '\n';
  os << "seed " << rec.params.seed << '\n';
  os << "completed " << (rec.completed ? 1 : 0) << '\n';
  os << "rounds " << rec.rounds << '\n';
  os << "total_balls " << rec.total_balls << '\n';
  os << "alive_balls " << rec.alive_balls << '\n';
  os << "work_messages " << rec.work_messages << '\n';
  os << "max_load " << rec.max_load << '\n';
  os << "burned_servers " << rec.burned_servers << '\n';
  os << "trace_rows " << rec.trace.size() << '\n';
  for (const RoundStats& r : rec.trace) {
    os << r.round << ' ' << r.alive_begin << ' ' << r.accepted << ' '
       << r.burned_total << '\n';
  }
  if (!os) throw std::runtime_error("write_run_record: stream failure");
}

namespace {

std::string expect_key(std::istream& is, const std::string& key) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("read_run_record: unexpected end of input");
  std::istringstream row(line);
  std::string name, value;
  row >> name;
  std::getline(row, value);
  if (name != key)
    throw std::runtime_error("read_run_record: expected key '" + key +
                             "', got '" + name + "'");
  // Trim the single leading space left by getline after >>.
  if (!value.empty() && value.front() == ' ') value.erase(0, 1);
  return value;
}

Protocol parse_protocol(const std::string& name) {
  if (name == "SAER") return Protocol::kSaer;
  if (name == "RAES") return Protocol::kRaes;
  throw std::runtime_error("run record: unknown protocol " + name);
}

/// JSON string escaping for the sweep rows: quotes, backslashes, and every
/// control character (labels are free-form user text; an unescaped newline
/// would break the one-row-per-line framing the resume splice relies on).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Strict cursor over one JSON line.  Every helper throws with the byte
/// offset on a mismatch, so malformed-line errors point at the defect.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void expect(char ch) {
    if (pos_ >= text_.size() || text_[pos_] != ch)
      fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  /// Consumes `"name":` — the fixed-key-order guard against emitter drift.
  void expect_key(const char* name) {
    const std::size_t at = pos_;
    expect('"');
    for (const char* p = name; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        pos_ = at;
        fail("expected key \"" + std::string(name) + "\"");
      }
      ++pos_;
    }
    expect('"');
    expect(':');
  }

  std::uint64_t parse_u64() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
      ++pos_;
    if (pos_ == start) fail("expected unsigned integer");
    errno = 0;
    const std::uint64_t value =
        std::strtoull(text_.substr(start, pos_ - start).c_str(), nullptr, 10);
    if (errno == ERANGE) fail("integer out of range");
    return value;
  }

  std::int64_t parse_i64() {
    const std::size_t at = pos_;
    const bool negative = pos_ < text_.size() && text_[pos_] == '-';
    if (negative) ++pos_;
    const std::uint64_t magnitude = parse_u64();
    const std::uint64_t limit =
        static_cast<std::uint64_t>(INT64_MAX) + (negative ? 1 : 0);
    if (magnitude > limit) {
      pos_ = at;
      fail("integer out of 64-bit signed range");
    }
    return negative ? -static_cast<std::int64_t>(magnitude)
                    : static_cast<std::int64_t>(magnitude);
  }

  std::uint32_t parse_u32() {
    const std::size_t at = pos_;
    const std::uint64_t value = parse_u64();
    if (value > UINT32_MAX) {
      pos_ = at;
      fail("integer out of 32-bit range");
    }
    return static_cast<std::uint32_t>(value);
  }

  double parse_double() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::string("0123456789+-.eE").find(text_[pos_]) !=
            std::string::npos))
      ++pos_;
    if (pos_ == start) fail("expected number");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    return value;
  }

  bool parse_bool01() {
    const std::size_t at = pos_;
    const std::uint64_t value = parse_u64();
    if (value > 1) {
      pos_ = at;
      fail("expected 0 or 1");
    }
    return value == 1;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') break;
      if (ch == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char hex = text_[pos_++];
              code <<= 4;
              if (hex >= '0' && hex <= '9') code |= static_cast<unsigned>(hex - '0');
              else if (hex >= 'a' && hex <= 'f') code |= static_cast<unsigned>(hex - 'a' + 10);
              else if (hex >= 'A' && hex <= 'F') code |= static_cast<unsigned>(hex - 'A' + 10);
              else fail("bad \\u escape digit");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xc0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3f));
            } else if (code >= 0xd800 && code < 0xe000) {
              fail("surrogate \\u escape unsupported");
            } else {
              out += static_cast<char>(0xe0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (code & 0x3f));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        --pos_;
        fail("unescaped control character");
      } else {
        out += ch;
      }
    }
    return out;
  }

  void expect_end() {
    if (pos_ != text_.size()) fail("trailing characters");
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("sweep row: " + what + " at byte " +
                             std::to_string(pos_));
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

RunRecord read_run_record(std::istream& is) {
  std::string header;
  if (!std::getline(is, header) || header != "saer-run 1")
    throw std::runtime_error("read_run_record: bad header");
  RunRecord rec;
  rec.params.protocol = parse_protocol(expect_key(is, "protocol"));
  rec.params.d = static_cast<std::uint32_t>(std::stoul(expect_key(is, "d")));
  rec.params.c = std::stod(expect_key(is, "c"));
  rec.params.seed = std::stoull(expect_key(is, "seed"));
  rec.completed = expect_key(is, "completed") == "1";
  rec.rounds = static_cast<std::uint32_t>(std::stoul(expect_key(is, "rounds")));
  rec.total_balls = std::stoull(expect_key(is, "total_balls"));
  rec.alive_balls = std::stoull(expect_key(is, "alive_balls"));
  rec.work_messages = std::stoull(expect_key(is, "work_messages"));
  rec.max_load = std::stoull(expect_key(is, "max_load"));
  rec.burned_servers = std::stoull(expect_key(is, "burned_servers"));
  const auto rows = std::stoull(expect_key(is, "trace_rows"));
  rec.trace.resize(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::string line;
    if (!std::getline(is, line))
      throw std::runtime_error("read_run_record: truncated trace");
    std::istringstream row(line);
    RoundStats& r = rec.trace[i];
    row >> r.round >> r.alive_begin >> r.accepted >> r.burned_total;
    if (!row) throw std::runtime_error("read_run_record: bad trace row");
    r.submitted = r.alive_begin;
  }
  return rec;
}

const std::vector<std::string>& run_record_columns() {
  static const std::vector<std::string> columns = {
      "protocol",      "d",        "c",
      "seed",          "completed", "rounds",
      "total_balls",   "alive_balls", "work_messages",
      "work_per_ball", "max_load", "burned_servers"};
  return columns;
}

double run_record_work_per_ball(const RunRecord& rec) {
  return rec.total_balls ? static_cast<double>(rec.work_messages) /
                               static_cast<double>(rec.total_balls)
                         : 0.0;
}

std::vector<std::string> run_record_cells(const RunRecord& rec) {
  return {to_string(rec.params.protocol),
          std::to_string(rec.params.d),
          format_double_compact(rec.params.c),
          std::to_string(rec.params.seed),
          rec.completed ? "1" : "0",
          std::to_string(rec.rounds),
          std::to_string(rec.total_balls),
          std::to_string(rec.alive_balls),
          std::to_string(rec.work_messages),
          format_double_compact(run_record_work_per_ball(rec)),
          std::to_string(rec.max_load),
          std::to_string(rec.burned_servers)};
}

std::string run_record_json(const RunRecord& rec) {
  std::string out = "{\"protocol\":\"" + to_string(rec.params.protocol) + '"';
  out += ",\"d\":" + std::to_string(rec.params.d);
  out += ",\"c\":" + format_double_roundtrip(rec.params.c);
  out += ",\"seed\":" + std::to_string(rec.params.seed);
  out += std::string(",\"completed\":") + (rec.completed ? "1" : "0");
  out += ",\"rounds\":" + std::to_string(rec.rounds);
  out += ",\"total_balls\":" + std::to_string(rec.total_balls);
  out += ",\"alive_balls\":" + std::to_string(rec.alive_balls);
  out += ",\"work_messages\":" + std::to_string(rec.work_messages);
  out += ",\"work_per_ball\":" + format_double_roundtrip(run_record_work_per_ball(rec));
  out += ",\"max_load\":" + std::to_string(rec.max_load);
  out += ",\"burned_servers\":" + std::to_string(rec.burned_servers);
  out += '}';
  return out;
}

std::string sweep_run_row_json(const SweepRunRow& row) {
  std::string out = "{\"point\":" + std::to_string(row.point);
  out += ",\"label\":\"" + json_escape(row.label) + '"';
  out += ",\"replication\":" + std::to_string(row.replication);
  out += ",\"graph_seed\":" + std::to_string(row.graph_seed);
  out += ",\"num_servers\":" + std::to_string(row.num_servers);
  out += ",\"burned_fraction\":" + format_double_roundtrip(row.burned_fraction);
  out += ",\"decay_rate\":" + format_double_roundtrip(row.decay_rate);
  out += ",\"run\":" + run_record_json(row.record) + '}';
  return out;
}

SweepRunRow parse_sweep_run_row(const std::string& line) {
  JsonCursor cursor(line);
  SweepRunRow row;
  cursor.expect('{');
  cursor.expect_key("point");
  row.point = cursor.parse_u32();
  cursor.expect(',');
  cursor.expect_key("label");
  row.label = cursor.parse_string();
  cursor.expect(',');
  cursor.expect_key("replication");
  row.replication = cursor.parse_u32();
  cursor.expect(',');
  cursor.expect_key("graph_seed");
  row.graph_seed = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("num_servers");
  row.num_servers = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("burned_fraction");
  row.burned_fraction = cursor.parse_double();
  cursor.expect(',');
  cursor.expect_key("decay_rate");
  row.decay_rate = cursor.parse_double();
  cursor.expect(',');
  cursor.expect_key("run");
  cursor.expect('{');
  RunRecord& rec = row.record;
  cursor.expect_key("protocol");
  rec.params.protocol = parse_protocol(cursor.parse_string());
  cursor.expect(',');
  cursor.expect_key("d");
  rec.params.d = cursor.parse_u32();
  cursor.expect(',');
  cursor.expect_key("c");
  rec.params.c = cursor.parse_double();
  cursor.expect(',');
  cursor.expect_key("seed");
  rec.params.seed = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("completed");
  rec.completed = cursor.parse_bool01();
  cursor.expect(',');
  cursor.expect_key("rounds");
  rec.rounds = cursor.parse_u32();
  cursor.expect(',');
  cursor.expect_key("total_balls");
  rec.total_balls = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("alive_balls");
  rec.alive_balls = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("work_messages");
  rec.work_messages = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("work_per_ball");
  const double work_per_ball = cursor.parse_double();
  cursor.expect(',');
  cursor.expect_key("max_load");
  rec.max_load = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("burned_servers");
  rec.burned_servers = cursor.parse_u64();
  cursor.expect('}');
  cursor.expect('}');
  cursor.expect_end();

  // Derived fields must agree with their integer sources: the emitter
  // computes them, so any mismatch means a corrupted or foreign stream.
  if (work_per_ball != run_record_work_per_ball(rec))
    throw std::runtime_error(
        "sweep row: work_per_ball contradicts work_messages/total_balls");
  if (row.num_servers == 0)
    throw std::runtime_error("sweep row: num_servers must be positive");
  if (row.burned_fraction != static_cast<double>(rec.burned_servers) /
                                 static_cast<double>(row.num_servers))
    throw std::runtime_error(
        "sweep row: burned_fraction contradicts burned_servers/num_servers");
  return row;
}

std::string serve_metrics_row_json(const ServeMetricsRow& row) {
  std::string out = "{\"round\":" + std::to_string(row.round);
  out += ",\"elapsed_us\":" + std::to_string(row.elapsed_us);
  out += ",\"arrivals_per_s\":" + format_double_roundtrip(row.arrivals_per_s);
  out += ",\"injected_clients\":" + std::to_string(row.injected_clients);
  out += ",\"assigned_balls\":" + std::to_string(row.assigned_balls);
  out += ",\"backlog\":" + std::to_string(row.backlog);
  out += ",\"p50_rounds\":" + std::to_string(row.p50_rounds);
  out += ",\"p99_rounds\":" + std::to_string(row.p99_rounds);
  out += ",\"p999_rounds\":" + std::to_string(row.p999_rounds);
  out += ",\"p50_us\":" + std::to_string(row.p50_us);
  out += ",\"p99_us\":" + std::to_string(row.p99_us);
  out += ",\"p999_us\":" + std::to_string(row.p999_us);
  out += ",\"max_load\":" + std::to_string(row.max_load);
  out += ",\"mean_load\":" + format_double_roundtrip(row.mean_load);
  out += ",\"burned_servers\":" + std::to_string(row.burned_servers);
  out += ",\"failed_servers\":" + std::to_string(row.failed_servers);
  out += '}';
  return out;
}

ServeMetricsRow parse_serve_metrics_row(const std::string& line) {
  JsonCursor cursor(line);
  ServeMetricsRow row;
  cursor.expect('{');
  cursor.expect_key("round");
  row.round = cursor.parse_u32();
  cursor.expect(',');
  cursor.expect_key("elapsed_us");
  row.elapsed_us = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("arrivals_per_s");
  row.arrivals_per_s = cursor.parse_double();
  cursor.expect(',');
  cursor.expect_key("injected_clients");
  row.injected_clients = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("assigned_balls");
  row.assigned_balls = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("backlog");
  row.backlog = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("p50_rounds");
  row.p50_rounds = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("p99_rounds");
  row.p99_rounds = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("p999_rounds");
  row.p999_rounds = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("p50_us");
  row.p50_us = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("p99_us");
  row.p99_us = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("p999_us");
  row.p999_us = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("max_load");
  row.max_load = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("mean_load");
  row.mean_load = cursor.parse_double();
  cursor.expect(',');
  cursor.expect_key("burned_servers");
  row.burned_servers = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("failed_servers");
  row.failed_servers = cursor.parse_u64();
  cursor.expect('}');
  cursor.expect_end();

  if (row.p50_rounds > row.p99_rounds || row.p99_rounds > row.p999_rounds)
    throw std::runtime_error("serve row: round percentiles out of order");
  if (row.p50_us > row.p99_us || row.p99_us > row.p999_us)
    throw std::runtime_error("serve row: microsecond percentiles out of order");
  return row;
}

namespace {

/// The closed set of supervision event names (plain array: keyed lookup
/// only, and the linter bans unordered containers under src/).
constexpr const char* kOrchestrateEvents[] = {
    "spawn", "restart", "exit", "stall", "chaos", "drain", "give-up", "done"};

bool known_orchestrate_event(const std::string& name) {
  for (const char* candidate : kOrchestrateEvents) {
    if (name == candidate) return true;
  }
  return false;
}

}  // namespace

std::string orchestrate_event_row_json(const OrchestrateEventRow& row) {
  std::string out = "{\"event\":\"" + json_escape(row.event) + '"';
  out += ",\"shard\":" + std::to_string(row.shard);
  out += ",\"attempt\":" + std::to_string(row.attempt);
  out += ",\"elapsed_ms\":" + std::to_string(row.elapsed_ms);
  out += ",\"pid\":" + std::to_string(row.pid);
  out += ",\"exit_code\":" + std::to_string(row.exit_code);
  out += ",\"term_signal\":" + std::to_string(row.term_signal);
  out += ",\"detail\":\"" + json_escape(row.detail) + "\"}";
  return out;
}

OrchestrateEventRow parse_orchestrate_event_row(const std::string& line) {
  JsonCursor cursor(line);
  OrchestrateEventRow row;
  cursor.expect('{');
  cursor.expect_key("event");
  row.event = cursor.parse_string();
  cursor.expect(',');
  cursor.expect_key("shard");
  row.shard = cursor.parse_u32();
  cursor.expect(',');
  cursor.expect_key("attempt");
  row.attempt = cursor.parse_u32();
  cursor.expect(',');
  cursor.expect_key("elapsed_ms");
  row.elapsed_ms = cursor.parse_u64();
  cursor.expect(',');
  cursor.expect_key("pid");
  row.pid = cursor.parse_i64();
  cursor.expect(',');
  cursor.expect_key("exit_code");
  row.exit_code = cursor.parse_i64();
  cursor.expect(',');
  cursor.expect_key("term_signal");
  row.term_signal = cursor.parse_i64();
  cursor.expect(',');
  cursor.expect_key("detail");
  row.detail = cursor.parse_string();
  cursor.expect('}');
  cursor.expect_end();

  if (!known_orchestrate_event(row.event))
    throw std::runtime_error("orchestrate row: unknown event '" + row.event +
                             "'");
  if (row.exit_code < -1 || row.exit_code > 255)
    throw std::runtime_error("orchestrate row: exit_code out of range");
  if (row.term_signal < 0 || row.term_signal > 64)
    throw std::runtime_error("orchestrate row: term_signal out of range");
  if (row.exit_code >= 0 && row.term_signal > 0)
    throw std::runtime_error(
        "orchestrate row: exit_code and term_signal are mutually exclusive");
  return row;
}

SweepJsonl read_sweep_jsonl(std::istream& is, const JsonlReadOptions& options) {
  SweepJsonl out;
  std::string line;
  std::size_t line_number = 0;
  std::string pending_error;
  std::size_t pending_line = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (!pending_error.empty()) {
      // The failed line was not the final one after all.
      throw std::runtime_error("sweep jsonl line " +
                               std::to_string(pending_line) + ": " +
                               pending_error);
    }
    try {
      out.rows.push_back(parse_sweep_run_row(line));
    } catch (const std::exception& err) {
      if (!options.tolerate_truncated_tail) {
        throw std::runtime_error("sweep jsonl line " +
                                 std::to_string(line_number) + ": " +
                                 err.what());
      }
      pending_error = err.what();
      pending_line = line_number;
    }
  }
  if (!pending_error.empty()) out.truncated_tail = true;
  return out;
}

SweepJsonl load_sweep_jsonl(const std::string& path,
                            const JsonlReadOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file)
    throw std::runtime_error("load_sweep_jsonl: cannot open " + path);
  try {
    return read_sweep_jsonl(file, options);
  } catch (const std::exception& err) {
    throw std::runtime_error(path + ": " + err.what());
  }
}

void save_run_record(const std::string& path, const RunRecord& record) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_run_record: cannot open " + path);
  write_run_record(file, record);
}

RunRecord load_run_record(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_run_record: cannot open " + path);
  return read_run_record(file);
}

}  // namespace saer
