#include "sim/run_record.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace saer {

std::string format_double_compact(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

RunRecord RunRecord::from_result(const ProtocolParams& params,
                                 const RunResult& result) {
  RunRecord rec;
  rec.params = params;
  rec.completed = result.completed;
  rec.rounds = result.rounds;
  rec.total_balls = result.total_balls;
  rec.alive_balls = result.alive_balls;
  rec.work_messages = result.work_messages;
  rec.max_load = result.max_load;
  rec.burned_servers = result.burned_servers;
  rec.trace = result.trace;
  return rec;
}

void write_run_record(std::ostream& os, const RunRecord& rec) {
  os << "saer-run 1\n";
  os << "protocol " << to_string(rec.params.protocol) << '\n';
  os << "d " << rec.params.d << '\n';
  os << "c " << rec.params.c << '\n';
  os << "seed " << rec.params.seed << '\n';
  os << "completed " << (rec.completed ? 1 : 0) << '\n';
  os << "rounds " << rec.rounds << '\n';
  os << "total_balls " << rec.total_balls << '\n';
  os << "alive_balls " << rec.alive_balls << '\n';
  os << "work_messages " << rec.work_messages << '\n';
  os << "max_load " << rec.max_load << '\n';
  os << "burned_servers " << rec.burned_servers << '\n';
  os << "trace_rows " << rec.trace.size() << '\n';
  for (const RoundStats& r : rec.trace) {
    os << r.round << ' ' << r.alive_begin << ' ' << r.accepted << ' '
       << r.burned_total << '\n';
  }
  if (!os) throw std::runtime_error("write_run_record: stream failure");
}

namespace {

std::string expect_key(std::istream& is, const std::string& key) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("read_run_record: unexpected end of input");
  std::istringstream row(line);
  std::string name, value;
  row >> name;
  std::getline(row, value);
  if (name != key)
    throw std::runtime_error("read_run_record: expected key '" + key +
                             "', got '" + name + "'");
  // Trim the single leading space left by getline after >>.
  if (!value.empty() && value.front() == ' ') value.erase(0, 1);
  return value;
}

}  // namespace

RunRecord read_run_record(std::istream& is) {
  std::string header;
  if (!std::getline(is, header) || header != "saer-run 1")
    throw std::runtime_error("read_run_record: bad header");
  RunRecord rec;
  const std::string protocol = expect_key(is, "protocol");
  if (protocol == "SAER") {
    rec.params.protocol = Protocol::kSaer;
  } else if (protocol == "RAES") {
    rec.params.protocol = Protocol::kRaes;
  } else {
    throw std::runtime_error("read_run_record: unknown protocol " + protocol);
  }
  rec.params.d = static_cast<std::uint32_t>(std::stoul(expect_key(is, "d")));
  rec.params.c = std::stod(expect_key(is, "c"));
  rec.params.seed = std::stoull(expect_key(is, "seed"));
  rec.completed = expect_key(is, "completed") == "1";
  rec.rounds = static_cast<std::uint32_t>(std::stoul(expect_key(is, "rounds")));
  rec.total_balls = std::stoull(expect_key(is, "total_balls"));
  rec.alive_balls = std::stoull(expect_key(is, "alive_balls"));
  rec.work_messages = std::stoull(expect_key(is, "work_messages"));
  rec.max_load = std::stoull(expect_key(is, "max_load"));
  rec.burned_servers = std::stoull(expect_key(is, "burned_servers"));
  const auto rows = std::stoull(expect_key(is, "trace_rows"));
  rec.trace.resize(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::string line;
    if (!std::getline(is, line))
      throw std::runtime_error("read_run_record: truncated trace");
    std::istringstream row(line);
    RoundStats& r = rec.trace[i];
    row >> r.round >> r.alive_begin >> r.accepted >> r.burned_total;
    if (!row) throw std::runtime_error("read_run_record: bad trace row");
    r.submitted = r.alive_begin;
  }
  return rec;
}

const std::vector<std::string>& run_record_columns() {
  static const std::vector<std::string> columns = {
      "protocol",      "d",        "c",
      "seed",          "completed", "rounds",
      "total_balls",   "alive_balls", "work_messages",
      "work_per_ball", "max_load", "burned_servers"};
  return columns;
}

std::vector<std::string> run_record_cells(const RunRecord& rec) {
  const double work_per_ball =
      rec.total_balls ? static_cast<double>(rec.work_messages) /
                            static_cast<double>(rec.total_balls)
                      : 0.0;
  return {to_string(rec.params.protocol),
          std::to_string(rec.params.d),
          format_double_compact(rec.params.c),
          std::to_string(rec.params.seed),
          rec.completed ? "1" : "0",
          std::to_string(rec.rounds),
          std::to_string(rec.total_balls),
          std::to_string(rec.alive_balls),
          std::to_string(rec.work_messages),
          format_double_compact(work_per_ball),
          std::to_string(rec.max_load),
          std::to_string(rec.burned_servers)};
}

std::string run_record_json(const RunRecord& rec) {
  const auto& columns = run_record_columns();
  const auto cells = run_record_cells(rec);
  std::string out = "{";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += columns[i];
    out += "\":";
    // Only `protocol` is textual; every other cell is already a JSON number
    // or 0/1 boolean-as-number.
    if (columns[i] == "protocol") {
      out += '"';
      out += cells[i];
      out += '"';
    } else {
      out += cells[i];
    }
  }
  out += '}';
  return out;
}

void save_run_record(const std::string& path, const RunRecord& record) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_run_record: cannot open " + path);
  write_run_record(file, record);
}

RunRecord load_run_record(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_run_record: cannot open " + path);
  return read_run_record(file);
}

}  // namespace saer
