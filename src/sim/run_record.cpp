#include "sim/run_record.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace saer {

RunRecord RunRecord::from_result(const ProtocolParams& params,
                                 const RunResult& result) {
  RunRecord rec;
  rec.params = params;
  rec.completed = result.completed;
  rec.rounds = result.rounds;
  rec.total_balls = result.total_balls;
  rec.alive_balls = result.alive_balls;
  rec.work_messages = result.work_messages;
  rec.max_load = result.max_load;
  rec.burned_servers = result.burned_servers;
  rec.trace = result.trace;
  return rec;
}

void write_run_record(std::ostream& os, const RunRecord& rec) {
  os << "saer-run 1\n";
  os << "protocol " << to_string(rec.params.protocol) << '\n';
  os << "d " << rec.params.d << '\n';
  os << "c " << rec.params.c << '\n';
  os << "seed " << rec.params.seed << '\n';
  os << "completed " << (rec.completed ? 1 : 0) << '\n';
  os << "rounds " << rec.rounds << '\n';
  os << "total_balls " << rec.total_balls << '\n';
  os << "alive_balls " << rec.alive_balls << '\n';
  os << "work_messages " << rec.work_messages << '\n';
  os << "max_load " << rec.max_load << '\n';
  os << "burned_servers " << rec.burned_servers << '\n';
  os << "trace_rows " << rec.trace.size() << '\n';
  for (const RoundStats& r : rec.trace) {
    os << r.round << ' ' << r.alive_begin << ' ' << r.accepted << ' '
       << r.burned_total << '\n';
  }
  if (!os) throw std::runtime_error("write_run_record: stream failure");
}

namespace {

std::string expect_key(std::istream& is, const std::string& key) {
  std::string line;
  if (!std::getline(is, line))
    throw std::runtime_error("read_run_record: unexpected end of input");
  std::istringstream row(line);
  std::string name, value;
  row >> name;
  std::getline(row, value);
  if (name != key)
    throw std::runtime_error("read_run_record: expected key '" + key +
                             "', got '" + name + "'");
  // Trim the single leading space left by getline after >>.
  if (!value.empty() && value.front() == ' ') value.erase(0, 1);
  return value;
}

}  // namespace

RunRecord read_run_record(std::istream& is) {
  std::string header;
  if (!std::getline(is, header) || header != "saer-run 1")
    throw std::runtime_error("read_run_record: bad header");
  RunRecord rec;
  const std::string protocol = expect_key(is, "protocol");
  if (protocol == "SAER") {
    rec.params.protocol = Protocol::kSaer;
  } else if (protocol == "RAES") {
    rec.params.protocol = Protocol::kRaes;
  } else {
    throw std::runtime_error("read_run_record: unknown protocol " + protocol);
  }
  rec.params.d = static_cast<std::uint32_t>(std::stoul(expect_key(is, "d")));
  rec.params.c = std::stod(expect_key(is, "c"));
  rec.params.seed = std::stoull(expect_key(is, "seed"));
  rec.completed = expect_key(is, "completed") == "1";
  rec.rounds = static_cast<std::uint32_t>(std::stoul(expect_key(is, "rounds")));
  rec.total_balls = std::stoull(expect_key(is, "total_balls"));
  rec.alive_balls = std::stoull(expect_key(is, "alive_balls"));
  rec.work_messages = std::stoull(expect_key(is, "work_messages"));
  rec.max_load = std::stoull(expect_key(is, "max_load"));
  rec.burned_servers = std::stoull(expect_key(is, "burned_servers"));
  const auto rows = std::stoull(expect_key(is, "trace_rows"));
  rec.trace.resize(rows);
  for (std::uint64_t i = 0; i < rows; ++i) {
    std::string line;
    if (!std::getline(is, line))
      throw std::runtime_error("read_run_record: truncated trace");
    std::istringstream row(line);
    RoundStats& r = rec.trace[i];
    row >> r.round >> r.alive_begin >> r.accepted >> r.burned_total;
    if (!row) throw std::runtime_error("read_run_record: bad trace row");
    r.submitted = r.alive_begin;
  }
  return rec;
}

void save_run_record(const std::string& path, const RunRecord& record) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("save_run_record: cannot open " + path);
  write_run_record(file, record);
}

RunRecord load_run_record(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("load_run_record: cannot open " + path);
  return read_run_record(file);
}

}  // namespace saer
