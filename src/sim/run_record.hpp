#pragma once
// Persistent run records: serializes (parameters, outcome, per-round trace)
// of a protocol run into a line-oriented text format so experiment results
// can be archived next to their CSVs and reloaded for later analysis
// without re-simulation.
//
// Format (one key per line, `trace` rows after the header block):
//
//   saer-run 1
//   protocol SAER
//   d 2
//   c 2.0
//   seed 67890
//   completed 1
//   rounds 7
//   total_balls 512
//   alive_balls 0
//   work_messages 1234
//   max_load 4
//   burned_servers 21
//   trace_rows 7
//   <round> <alive_begin> <accepted> <burned_total>
//   ...
//
// The assignment and load vectors are intentionally not serialized (they
// are O(n) and reproducible from the seed); records capture the observables
// the figures report.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace saer {

struct RunRecord {
  ProtocolParams params;
  bool completed = false;
  std::uint32_t rounds = 0;
  std::uint64_t total_balls = 0;
  std::uint64_t alive_balls = 0;
  std::uint64_t work_messages = 0;
  std::uint64_t max_load = 0;
  std::uint64_t burned_servers = 0;
  std::vector<RoundStats> trace;  ///< basic fields only

  /// Captures the record of a finished run.
  static RunRecord from_result(const ProtocolParams& params,
                               const RunResult& result);
};

void write_run_record(std::ostream& os, const RunRecord& record);
[[nodiscard]] RunRecord read_run_record(std::istream& is);

void save_run_record(const std::string& path, const RunRecord& record);
[[nodiscard]] RunRecord load_run_record(const std::string& path);

/// Tabular emission for sweep streams: the fixed column set below and one
/// row of preformatted cells per record (the trace is never tabulated).
/// Cell formatting is deterministic, so files produced from identical runs
/// compare byte-equal regardless of scheduling.
[[nodiscard]] const std::vector<std::string>& run_record_columns();
[[nodiscard]] std::vector<std::string> run_record_cells(const RunRecord& rec);

/// One-line JSON object with the same fields as run_record_columns()
/// (no trailing newline), for JSONL streams.
[[nodiscard]] std::string run_record_json(const RunRecord& rec);

/// Compact deterministic double formatting ("%g") shared by every record
/// cell and the sweep sinks, so all columns of a row use one rule and
/// byte-identical output only depends on the values.
[[nodiscard]] std::string format_double_compact(double value);

}  // namespace saer
