#pragma once
// Persistent run records: serializes (parameters, outcome, per-round trace)
// of a protocol run into a line-oriented text format so experiment results
// can be archived next to their CSVs and reloaded for later analysis
// without re-simulation.
//
// Format (one key per line, `trace` rows after the header block):
//
//   saer-run 1
//   protocol SAER
//   d 2
//   c 2.0
//   seed 67890
//   completed 1
//   rounds 7
//   total_balls 512
//   alive_balls 0
//   work_messages 1234
//   max_load 4
//   burned_servers 21
//   trace_rows 7
//   <round> <alive_begin> <accepted> <burned_total>
//   ...
//
// The assignment and load vectors are intentionally not serialized (they
// are O(n) and reproducible from the seed); records capture the observables
// the figures report.

#include <iosfwd>
#include <string>

#include "core/protocol.hpp"

namespace saer {

struct RunRecord {
  ProtocolParams params;
  bool completed = false;
  std::uint32_t rounds = 0;
  std::uint64_t total_balls = 0;
  std::uint64_t alive_balls = 0;
  std::uint64_t work_messages = 0;
  std::uint64_t max_load = 0;
  std::uint64_t burned_servers = 0;
  std::vector<RoundStats> trace;  ///< basic fields only

  /// Captures the record of a finished run.
  static RunRecord from_result(const ProtocolParams& params,
                               const RunResult& result);
};

void write_run_record(std::ostream& os, const RunRecord& record);
[[nodiscard]] RunRecord read_run_record(std::istream& is);

void save_run_record(const std::string& path, const RunRecord& record);
[[nodiscard]] RunRecord load_run_record(const std::string& path);

}  // namespace saer
