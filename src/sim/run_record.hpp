#pragma once
// Persistent run records: serializes (parameters, outcome, per-round trace)
// of a protocol run into a line-oriented text format so experiment results
// can be archived next to their CSVs and reloaded for later analysis
// without re-simulation.
//
// Format (one key per line, `trace` rows after the header block):
//
//   saer-run 1
//   protocol SAER
//   d 2
//   c 2.0
//   seed 67890
//   completed 1
//   rounds 7
//   total_balls 512
//   alive_balls 0
//   work_messages 1234
//   max_load 4
//   burned_servers 21
//   trace_rows 7
//   <round> <alive_begin> <accepted> <burned_total>
//   ...
//
// The assignment and load vectors are intentionally not serialized (they
// are O(n) and reproducible from the seed); records capture the observables
// the figures report.
//
// Sweep JSONL rows
// ----------------
// The sweep scheduler streams one SweepRunRow JSON object per replication
// (see sweep.hpp).  Emitter and parser live together in this module so the
// field names, field order, and escaping cannot drift apart.  The canonical
// row is a single line:
//
//   {"point":P,"label":"...","replication":R,"graph_seed":G,
//    "num_servers":N,"burned_fraction":F,"decay_rate":D,
//    "run":{"protocol":"SAER","d":..,"c":..,"seed":..,"completed":0|1,
//           "rounds":..,"total_balls":..,"alive_balls":..,
//           "work_messages":..,"work_per_ball":..,"max_load":..,
//           "burned_servers":..}}
//
// Doubles are emitted round-trip exact (format_double_roundtrip), so
// parse(emit(row)) == row field-for-field and offline aggregation of a
// stream bit-matches the in-process aggregates.  The parser is strict: it
// requires exactly these keys in exactly this order (that strictness is the
// regression guard against emitter/reader drift) and validates the derived
// fields (work_per_ball, burned_fraction) against their integer sources.
// The per-round trace is not part of the row.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/protocol.hpp"

namespace saer {

struct RunRecord {
  ProtocolParams params;
  bool completed = false;
  std::uint32_t rounds = 0;
  std::uint64_t total_balls = 0;
  std::uint64_t alive_balls = 0;
  std::uint64_t work_messages = 0;
  std::uint64_t max_load = 0;
  std::uint64_t burned_servers = 0;
  std::vector<RoundStats> trace;  ///< basic fields only

  /// Captures the record of a finished run.
  static RunRecord from_result(const ProtocolParams& params,
                               const RunResult& result);
};

void write_run_record(std::ostream& os, const RunRecord& record);
[[nodiscard]] RunRecord read_run_record(std::istream& is);

void save_run_record(const std::string& path, const RunRecord& record);
[[nodiscard]] RunRecord load_run_record(const std::string& path);

/// Tabular emission for sweep streams: the fixed column set below and one
/// row of preformatted cells per record (the trace is never tabulated).
/// Cell formatting is deterministic, so files produced from identical runs
/// compare byte-equal regardless of scheduling.
[[nodiscard]] const std::vector<std::string>& run_record_columns();
[[nodiscard]] std::vector<std::string> run_record_cells(const RunRecord& rec);

/// One-line JSON object with the same fields as run_record_columns()
/// (no trailing newline), for JSONL streams.  Doubles use
/// format_double_roundtrip so the object parses back to the exact record.
[[nodiscard]] std::string run_record_json(const RunRecord& rec);

/// One row of a sweep JSONL stream: the per-run fields the scheduler's
/// ordered sink wraps around the nested RunRecord object.  `record.trace`
/// is always empty after parsing (traces are not serialized in rows).
struct SweepRunRow {
  std::uint32_t point = 0;       ///< index into the sweep grid
  std::string label;             ///< the grid point's free-form tag
  std::uint32_t replication = 0;
  std::uint64_t graph_seed = 0;
  std::uint64_t num_servers = 0;
  double burned_fraction = 0.0;  ///< burned_servers / num_servers, exact
  double decay_rate = 0.0;
  RunRecord record;
};

/// Canonical one-line JSON emission of a row (no trailing newline).
[[nodiscard]] std::string sweep_run_row_json(const SweepRunRow& row);

/// Strict parse of one canonical row; throws std::runtime_error with a byte
/// offset on any malformed input, unknown/reordered key, or a derived field
/// that contradicts its integer sources.
[[nodiscard]] SweepRunRow parse_sweep_run_row(const std::string& line);

/// One periodic metrics record of a `saer serve` run (see cli/commands.cpp):
/// a service-level snapshot emitted every report interval and once at
/// shutdown.  Latency percentiles appear twice -- in protocol rounds and in
/// microseconds of (virtual or wall) clock -- because the round clock is
/// what the theory bounds and the microsecond clock is what an operator
/// pages on.  Same strict emit/parse discipline as the sweep rows: fixed
/// key order, round-trip-exact doubles, derived fields validated.
struct ServeMetricsRow {
  std::uint32_t round = 0;
  std::uint64_t elapsed_us = 0;        ///< clock since service start
  double arrivals_per_s = 0.0;         ///< sustained: injected / elapsed
  std::uint64_t injected_clients = 0;
  std::uint64_t assigned_balls = 0;
  std::uint64_t backlog = 0;           ///< activated, unassigned balls
  std::uint64_t p50_rounds = 0;        ///< settle latency percentiles
  std::uint64_t p99_rounds = 0;
  std::uint64_t p999_rounds = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t p999_us = 0;
  std::uint64_t max_load = 0;
  double mean_load = 0.0;              ///< assigned_balls / num_servers
  std::uint64_t burned_servers = 0;
  std::uint64_t failed_servers = 0;
};

/// Canonical one-line JSON emission of a metrics row (no trailing newline).
[[nodiscard]] std::string serve_metrics_row_json(const ServeMetricsRow& row);

/// Strict parse of one canonical metrics row; throws std::runtime_error
/// with a byte offset on malformed input or unknown/reordered keys.
[[nodiscard]] ServeMetricsRow parse_serve_metrics_row(const std::string& line);

/// One supervision event of a `saer orchestrate` run (see
/// net/orchestrator.hpp): the event log is a JSONL stream with one row per
/// lifecycle transition of a shard subprocess, under the same strict
/// emit/parse discipline as the sweep and serve rows (fixed key order,
/// validated fields), so the jsonl-key-order lint rule covers it.
///
/// `event` is one of: spawn, restart, exit, stall, chaos, drain, give-up,
/// done.  `exit_code` is -1 unless the shard exited normally;
/// `term_signal` is 0 unless it died by (or was sent) that signal -- the
/// two are mutually exclusive, which the parser enforces.
struct OrchestrateEventRow {
  std::string event;
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;     ///< 1-based spawn ordinal for this shard
  std::uint64_t elapsed_ms = 0;  ///< supervisor clock since orchestrate start
  std::int64_t pid = -1;         ///< -1 when no process is associated
  std::int64_t exit_code = -1;   ///< -1 = no normal exit (signal, or n/a)
  std::int64_t term_signal = 0;  ///< > 0: the signal that ended the attempt
  std::string detail;            ///< free-form context ("budget exhausted")
};

/// Canonical one-line JSON emission of a supervision event (no newline).
[[nodiscard]] std::string orchestrate_event_row_json(
    const OrchestrateEventRow& row);

/// Strict parse of one canonical event row; throws std::runtime_error with
/// a byte offset on malformed input, unknown/reordered keys, an unknown
/// event name, or an exit_code/term_signal combination that cannot happen.
[[nodiscard]] OrchestrateEventRow parse_orchestrate_event_row(
    const std::string& line);

struct JsonlReadOptions {
  /// Tolerate a truncated final line (a crash mid-append): if the last line
  /// of the stream fails to parse it is skipped instead of throwing.  Every
  /// earlier line must still parse.
  bool tolerate_truncated_tail = false;
};

struct SweepJsonl {
  std::vector<SweepRunRow> rows;
  bool truncated_tail = false;  ///< a partial final line was skipped
};

/// Reads a whole JSONL stream of sweep rows.  Strict by default: any
/// malformed line throws std::runtime_error naming the 1-based line number.
[[nodiscard]] SweepJsonl read_sweep_jsonl(std::istream& is,
                                          const JsonlReadOptions& options = {});
[[nodiscard]] SweepJsonl load_sweep_jsonl(const std::string& path,
                                          const JsonlReadOptions& options = {});

/// Messages per ball (work_messages / total_balls; 0 when there are no
/// balls): the derived field shared by the record cells, the JSON emitters,
/// and the aggregate arithmetic, so the three can never disagree.
[[nodiscard]] double run_record_work_per_ball(const RunRecord& rec);

/// Compact deterministic double formatting ("%g") shared by every record
/// cell and the sweep sinks, so all columns of a row use one rule and
/// byte-identical output only depends on the values.
[[nodiscard]] std::string format_double_compact(double value);

/// Shortest "%.Ng" formatting that parses back to the exact same double
/// (N in {15,16,17}).  Used by every JSONL emitter so parsed streams carry
/// the same bits the scheduler computed in-process.
[[nodiscard]] std::string format_double_roundtrip(double value);

}  // namespace saer
