#pragma once
// Replicated-experiment driver: runs the protocol engine across independent
// seeds on freshly sampled topologies and aggregates the observables every
// figure reports (completion rounds, work per ball, max load, burned
// servers, failure rate).

#include <cstdint>
#include <functional>

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "graph/bipartite_graph.hpp"
#include "sim/run_record.hpp"
#include "util/stats.hpp"

namespace saer {

/// Builds the topology for one replication.  Random generators should use
/// the given seed so replications are independent; deterministic topologies
/// (ring, grid) may ignore it.
using GraphFactory = std::function<BipartiteGraph(std::uint64_t seed)>;

struct ExperimentConfig {
  ProtocolParams params;
  std::uint32_t replications = 5;
  std::uint64_t master_seed = 42;
  /// Re-sample the topology per replication (true) or build once (false).
  bool resample_graph = true;
};

struct Aggregate {
  Accumulator rounds;          ///< completion rounds of completed runs
  Accumulator work_per_ball;   ///< messages / (n*d)
  Accumulator max_load;
  Accumulator burned_fraction; ///< burned servers / n (SAER)
  Accumulator decay_rate;      ///< mean alive_{t+1}/alive_t in the heavy stage
  std::uint32_t completed = 0;
  std::uint32_t failed = 0;    ///< hit the round cap

  [[nodiscard]] double failure_rate() const {
    const std::uint32_t total = completed + failed;
    return total ? static_cast<double>(failed) / total : 0.0;
  }
};

/// Folds one run's observables into `agg` with exactly the arithmetic the
/// serial driver uses.  Replaying runs in (point, replication) order through
/// this function is the bit-reproducibility contract shared by the sweep
/// scheduler and the offline `saer aggregate` path (sim/aggregate.hpp).
void accumulate_run(Aggregate& agg, const RunRecord& rec,
                    double burned_fraction, double decay_rate);

/// Runs `config.replications` independent replications.  Replication i uses
/// protocol seed replication_seed(master_seed, 2i) and graph seed
/// replication_seed(master_seed, 2i+1).
///
/// Delegates to the batched SweepScheduler (sim/sweep.hpp).  `jobs` is the
/// worker count (0 = hardware concurrency); results are bit-identical for
/// any value.  The default of 1 preserves the serial contract that the
/// factory is never invoked concurrently, which callers with stateful
/// factories rely on; pass jobs > 1 only with thread-safe factories.
[[nodiscard]] Aggregate run_replicated(const GraphFactory& factory,
                                       const ExperimentConfig& config,
                                       unsigned jobs = 1);

/// Single run on a prebuilt graph with a derived seed (used by sweeps that
/// need the full RunResult, e.g. the trace figures).
[[nodiscard]] RunResult run_once(const BipartiteGraph& graph,
                                 const ProtocolParams& params);

}  // namespace saer
