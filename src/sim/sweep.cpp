#include "sim/sweep.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "core/metrics.hpp"
#include "core/workspace.hpp"
#include "util/csv.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace saer {

std::uint64_t topology_cache_key(const std::string& generator, std::uint64_t n,
                                 std::uint64_t extra) {
  std::uint64_t h = 0x5eed'0f'70'7014ULL;
  for (const char ch : generator) {
    h = mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
  }
  h = mix64(h, n);
  h = mix64(h, extra);
  return h ? h : 1;  // keep 0 reserved for "no cross-point reuse"
}

ShardSpec parse_shard(const std::string& text) {
  const auto fail = [&text]() -> ShardSpec {
    throw std::invalid_argument("--shard expects i/k with 0 <= i < k, e.g. "
                                "0/4 (got '" +
                                text + "')");
  };
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 == text.size()) {
    return fail();
  }
  const auto parse_field = [&](std::size_t begin, std::size_t end,
                               unsigned long long& out) {
    if (begin == end || end - begin > 9) return false;  // < 10^9 is plenty
    out = 0;
    for (std::size_t i = begin; i < end; ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      out = out * 10 + static_cast<unsigned long long>(text[i] - '0');
    }
    return true;
  };
  unsigned long long index = 0, count = 0;
  if (!parse_field(0, slash, index) ||
      !parse_field(slash + 1, text.size(), count) || count == 0 ||
      index >= count) {
    return fail();
  }
  return ShardSpec{static_cast<unsigned>(index), static_cast<unsigned>(count)};
}

std::vector<std::size_t> shard_run_ranks(std::size_t total_runs,
                                         const ShardSpec& spec) {
  if (spec.count == 0 || spec.index >= spec.count) {
    throw std::invalid_argument("sweep: shard index " +
                                std::to_string(spec.index) +
                                " out of range for shard count " +
                                std::to_string(spec.count));
  }
  std::vector<std::size_t> ranks;
  ranks.reserve(total_runs / spec.count + 1);
  for (std::size_t r = spec.index; r < total_runs; r += spec.count) {
    ranks.push_back(r);
  }
  return ranks;
}

void apply_shard_flag(SweepOptions& options, const std::string& flag_value) {
  if (flag_value.empty()) return;
  const ShardSpec spec = parse_shard(flag_value);
  options.shard_index = spec.index;
  options.shard_count = spec.count;
}

std::string shard_summary(const SweepOptions& options,
                          std::size_t total_runs) {
  if (options.shard_count <= 1) return {};
  return ", shard " + std::to_string(options.shard_index) + "/" +
         std::to_string(options.shard_count) + " of " +
         std::to_string(total_runs) + " grid runs";
}

std::string shard_note(const SweepOptions& options) {
  if (options.shard_count <= 1) return {};
  return "shard " + std::to_string(options.shard_index) + "/" +
         std::to_string(options.shard_count) +
         ": the table above covers only this shard's runs; fold every "
         "shard's JSONL stream with `saer aggregate`\n";
}

std::uint64_t grid_fingerprint(const std::vector<SweepPoint>& grid) {
  std::uint64_t h = 0x5eed'c8ec'9017ULL;
  for (const SweepPoint& point : grid) {
    h = mix64(h, point.label.size());
    for (const char ch : point.label) {
      h = mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
    }
    const ExperimentConfig& config = point.config;
    h = mix64(h, config.replications);
    h = mix64(h, config.master_seed);
    h = mix64(h, config.resample_graph ? 1 : 0);
    h = mix64(h, point.topology_key);
    // Like runners, implicit factories are closures the fingerprint cannot
    // see into; fold the mode bit so a stored checkpoint is rejected by an
    // implicit rerun of the same grid (and vice versa).
    h = mix64(h, point.implicit_factory ? 1 : 0);
    // params.seed is excluded: the scheduler overrides it per replication.
    // params.store_assignment is excluded too: it changes only whether the
    // engine materializes the assignment vector, never a streamed byte, so
    // a resume may legitimately mix modes.
    const ProtocolParams& params = config.params;
    h = mix64(h, static_cast<std::uint64_t>(params.protocol));
    h = mix64(h, params.d);
    h = mix64(h, std::bit_cast<std::uint64_t>(params.c));
    h = mix64(h, params.max_rounds);
    h = mix64(h, params.deep_trace ? 1 : 0);
    h = mix64(h, params.record_trace ? 1 : 0);
  }
  return h ? h : 1;
}

std::uint64_t shard_checkpoint_fingerprint(std::uint64_t grid_fingerprint,
                                           const ShardSpec& spec) {
  if (spec.count <= 1) return grid_fingerprint;
  const std::uint64_t h =
      mix64(mix64(grid_fingerprint, spec.count), spec.index);
  return h ? h : 1;
}

namespace {

namespace fs = std::filesystem;

/// fsyncs the directory holding `path`, so the file's directory entry --
/// not just its contents -- survives a host crash.  Best-effort: a
/// filesystem that cannot open directories read-only just skips it.
void fsync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const fs::path parent = fs::path(path).parent_path();
  const std::string dir = parent.empty() ? std::string(".") : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// The sweep-level view of one run as streamed to JSONL (trace excluded:
/// rows archive the observables, not the per-round history).
SweepRunRow to_sweep_row(const SweepRun& run, const std::string& label) {
  SweepRunRow row;
  row.point = run.point;
  row.label = label;
  row.replication = run.replication;
  row.graph_seed = run.graph_seed;
  row.num_servers = run.num_servers;
  row.burned_fraction = run.burned_fraction;
  row.decay_rate = run.decay_rate;
  row.record.params = run.record.params;
  row.record.completed = run.record.completed;
  row.record.rounds = run.record.rounds;
  row.record.total_balls = run.record.total_balls;
  row.record.alive_balls = run.record.alive_balls;
  row.record.work_messages = run.record.work_messages;
  row.record.max_load = run.record.max_load;
  row.record.burned_servers = run.record.burned_servers;
  return row;
}

SweepRun from_sweep_row(const SweepRunRow& row) {
  SweepRun run;
  run.point = row.point;
  run.replication = row.replication;
  run.protocol_seed = row.record.params.seed;
  run.graph_seed = row.graph_seed;
  run.num_servers = row.num_servers;
  run.burned_fraction = row.burned_fraction;
  run.decay_rate = row.decay_rate;
  run.record = row.record;
  return run;
}

/// Streams per-run rows to CSV/JSONL in global run order regardless of task
/// completion order: completed rows are buffered until every earlier row
/// has been written, so the files are byte-identical for any worker count.
/// With a checkpoint configured it also appends one `run` line per written
/// row and periodically fsyncs (streams flushed first), making the write
/// frontier durable for resume.
class OrderedSink {
 public:
  struct Config {
    const SweepOptions* options = nullptr;
    std::size_t start_index = 0;  ///< resume frontier: rows [0, start) exist
    std::size_t total_runs = 0;
    std::uint64_t fingerprint = 0;
  };

  explicit OrderedSink(const Config& config)
      : next_(config.start_index),
        sync_interval_(std::max(1u, config.options->checkpoint_interval)),
        hook_(&config.options->on_row_streamed),
        durability_(&config.options->on_durability) {
    const SweepOptions& options = *config.options;
    const bool append = config.start_index > 0;
    if (!options.csv_path.empty()) {
      csv_.emplace(options.csv_path, append);
      if (!append) {
        auto columns = run_record_columns();
        std::vector<std::string> header = {"point",       "label",
                                           "replication", "graph_seed",
                                           "num_servers", "burned_fraction",
                                           "decay_rate"};
        header.insert(header.end(), columns.begin(), columns.end());
        csv_->header(header);
      }
    }
    if (!options.jsonl_path.empty()) {
      jsonl_.emplace(options.jsonl_path,
                     append ? (std::ios::out | std::ios::app) : std::ios::out);
      if (!*jsonl_) {
        throw std::runtime_error("sweep: cannot open JSONL sink " +
                                 options.jsonl_path);
      }
    }
    if (!options.checkpoint_path.empty()) {
      checkpoint_ =
          std::fopen(options.checkpoint_path.c_str(), append ? "a" : "w");
      if (!checkpoint_) {
        throw std::runtime_error("sweep: cannot open checkpoint " +
                                 options.checkpoint_path);
      }
      if (!append) {
        std::fprintf(checkpoint_, "saer-checkpoint 1 %llu %llu\n",
                     static_cast<unsigned long long>(config.total_runs),
                     static_cast<unsigned long long>(config.fingerprint));
      }
      // Make the checkpoint durable end to end before any run streams: the
      // header bytes via the usual stream-then-checkpoint sync, and the
      // file's very existence via its parent directory.  Without the
      // directory fsync a host crash can forget a freshly created file
      // whose contents were synced -- the classic create+fsync gap.
      sync();
      fsync_parent_dir(options.checkpoint_path);
      note("fsync-dir");
    }
  }

  ~OrderedSink() {
    sync();
    if (checkpoint_) std::fclose(checkpoint_);
  }

  [[nodiscard]] bool enabled() const { return csv_ || jsonl_; }

  /// Called by a task after it fully populated `run`; `index` is the global
  /// (point, replication) rank.  Thread-safe.
  void push(std::size_t index, const SweepRun& run, const std::string& label) {
    std::lock_guard lock(mutex_);
    if (dead_) return;  // a hook abort froze the streams at their frontier
    pending_.emplace(index, make_row(run, label));
    while (!pending_.empty() && pending_.begin()->first == next_) {
      const Row& row = pending_.begin()->second;
      if (csv_) csv_->row(row.cells);
      if (jsonl_) *jsonl_ << row.json << '\n';
      if (checkpoint_) {
        std::fprintf(checkpoint_, "run %llu %u %u\n",
                     static_cast<unsigned long long>(next_), row.point,
                     row.replication);
        if (++rows_since_sync_ >= sync_interval_) {
          sync();
          rows_since_sync_ = 0;
        }
      }
      pending_.erase(pending_.begin());
      ++next_;
      if (*hook_) {
        try {
          (*hook_)(next_);
        } catch (...) {
          dead_ = true;
          throw;
        }
      }
    }
  }

 private:
  struct Row {
    std::uint32_t point = 0;
    std::uint32_t replication = 0;
    std::vector<std::string> cells;
    std::string json;
  };

  [[nodiscard]] Row make_row(const SweepRun& run, const std::string& label) {
    Row row;
    row.point = run.point;
    row.replication = run.replication;
    if (csv_) {
      row.cells = {std::to_string(run.point),
                   label,
                   std::to_string(run.replication),
                   std::to_string(run.graph_seed),
                   std::to_string(run.num_servers),
                   format_double_compact(run.burned_fraction),
                   format_double_compact(run.decay_rate)};
      const auto record = run_record_cells(run.record);
      row.cells.insert(row.cells.end(), record.begin(), record.end());
    }
    if (jsonl_) row.json = sweep_run_row_json(to_sweep_row(run, label));
    return row;
  }

  /// Durability order: stream bytes first, then the checkpoint record, so
  /// the checkpoint never durably claims a row the streams lost.
  void sync() {
    if (csv_) csv_->flush();
    if (jsonl_) jsonl_->flush();
    if (checkpoint_) {
      note("flush-streams");
      std::fflush(checkpoint_);
#if defined(__unix__) || defined(__APPLE__)
      ::fsync(fileno(checkpoint_));
#endif
      note("fsync-checkpoint");
    }
  }

  void note(const char* step) {
    if (*durability_) (*durability_)(step);
  }

  std::mutex mutex_;
  std::optional<CsvWriter> csv_;
  std::optional<std::ofstream> jsonl_;
  std::FILE* checkpoint_ = nullptr;
  std::map<std::size_t, Row> pending_;
  std::size_t next_ = 0;
  unsigned sync_interval_ = 16;
  unsigned rows_since_sync_ = 0;
  const std::function<void(std::size_t)>* hook_ = nullptr;
  const std::function<void(const char*)>* durability_ = nullptr;
  bool dead_ = false;
};

/// Complete ('\n'-terminated) lines in `path`, up to `max_lines`, plus the
/// byte offset just past the last counted line.  Missing file counts zero.
struct LineScan {
  std::size_t lines = 0;
  std::uint64_t offset = 0;
};

LineScan count_lines(const std::string& path, std::size_t max_lines) {
  LineScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;
  char ch;
  std::uint64_t pos = 0;
  while (scan.lines < max_lines && in.get(ch)) {
    ++pos;
    if (ch == '\n') {
      ++scan.lines;
      scan.offset = pos;
    }
  }
  return scan;
}

/// Complete CSV records, up to `max_records`: like count_lines, but a
/// newline inside an RFC 4180 quoted field (labels are free-form and may
/// contain '\n') does not terminate a record.  A `""` escape toggles the
/// quote state twice, so plain parity tracking is exact.
LineScan count_csv_records(const std::string& path, std::size_t max_records) {
  LineScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;
  char ch;
  std::uint64_t pos = 0;
  bool quoted = false;
  while (scan.lines < max_records && in.get(ch)) {
    ++pos;
    if (ch == '"') {
      quoted = !quoted;
    } else if (ch == '\n' && !quoted) {
      ++scan.lines;
      scan.offset = pos;
    }
  }
  return scan;
}

}  // namespace

CheckpointInfo read_checkpoint_info(const std::string& path) {
  CheckpointInfo scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) return scan;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::size_t start = 0;
  bool saw_header = false;
  while (start < text.size()) {
    const auto newline = text.find('\n', start);
    if (newline == std::string::npos) break;  // torn tail: ignore
    const std::string line = text.substr(start, newline - start);
    start = newline + 1;
    std::istringstream row(line);
    if (!saw_header) {
      std::string magic;
      int version = 0;
      unsigned long long total = 0, fingerprint = 0;
      row >> magic >> version >> total >> fingerprint;
      if (!row || magic != "saer-checkpoint" || version != 1) return scan;
      scan.header_ok = true;
      scan.total_runs = static_cast<std::size_t>(total);
      scan.fingerprint = fingerprint;
      saw_header = true;
      continue;
    }
    std::string word;
    unsigned long long index = 0;
    std::uint32_t point = 0, replication = 0;
    row >> word >> index >> point >> replication;
    if (!row || word != "run" || index != scan.completed) break;
    ++scan.completed;
  }
  return scan;
}

namespace {

struct ResumePlan {
  std::size_t frontier = 0;        ///< runs [0, frontier) are already done
  std::vector<SweepRunRow> rows;   ///< their reloaded records
};

/// Reconstructs the durable frontier from checkpoint + streams, reloads the
/// finished runs from the JSONL archive, and truncates every file to the
/// frontier so the resumed sink appends the exact bytes an uninterrupted
/// run would have written next.  `shard_ranks` maps this process's local
/// run ranks (what the files index) to global grid ranks.
ResumePlan plan_resume(const SweepOptions& options,
                       const std::vector<std::size_t>& offsets,
                       const std::vector<SweepPoint>& grid,
                       const std::vector<std::size_t>& shard_ranks,
                       std::uint64_t fingerprint) {
  ResumePlan plan;
  const CheckpointInfo checkpoint = read_checkpoint_info(options.checkpoint_path);
  if (!checkpoint.header_ok) return plan;  // missing or torn: start fresh
  if (checkpoint.total_runs != shard_ranks.size() ||
      checkpoint.fingerprint != fingerprint) {
    throw std::runtime_error("sweep: checkpoint " + options.checkpoint_path +
                             " was written by a different grid; refusing to "
                             "splice (delete it to restart)");
  }

  // Clamp the claimed frontier to the complete rows each stream actually
  // holds: after a hard kill any file may be ahead of or behind the others.
  std::size_t frontier = std::min(checkpoint.completed, shard_ranks.size());
  frontier = std::min(frontier, count_lines(options.jsonl_path, frontier).lines);
  if (!options.csv_path.empty()) {
    const LineScan csv = count_csv_records(options.csv_path, frontier + 1);
    frontier = std::min(frontier, csv.lines ? csv.lines - 1 : 0);
  }
  if (frontier == 0) return plan;  // nothing durable: fresh sinks truncate

  // Reload the finished runs (strict: a corrupt archive cannot be resumed).
  const LineScan jsonl = count_lines(options.jsonl_path, frontier);
  {
    std::ifstream in(options.jsonl_path, std::ios::binary);
    std::string head(jsonl.offset, '\0');
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    if (!in)
      throw std::runtime_error("sweep: cannot re-read " + options.jsonl_path);
    std::istringstream lines(head);
    std::string line;
    while (std::getline(lines, line)) {
      SweepRunRow row;
      try {
        row = parse_sweep_run_row(line);
      } catch (const std::exception& err) {
        throw std::runtime_error("sweep: resume aborted, " +
                                 options.jsonl_path + " line " +
                                 std::to_string(plan.rows.size() + 1) + ": " +
                                 err.what());
      }
      const std::size_t rank = plan.rows.size();
      if (row.point >= grid.size() ||
          row.replication >= grid[row.point].config.replications ||
          offsets[row.point] + row.replication != shard_ranks[rank] ||
          row.record.params.seed !=
              replication_seed(grid[row.point].config.master_seed,
                               2ULL * row.replication) ||
          row.graph_seed !=
              replication_seed(grid[row.point].config.master_seed,
                               2ULL * row.replication + 1)) {
        throw std::runtime_error(
            "sweep: resume aborted, " + options.jsonl_path + " line " +
            std::to_string(rank + 1) + " does not match the grid");
      }
      plan.rows.push_back(std::move(row));
    }
  }
  plan.frontier = frontier;

  // Truncate streams and checkpoint to the frontier: torn tails and rows
  // past the last durable checkpoint record are recomputed, not trusted.
  fs::resize_file(options.jsonl_path, jsonl.offset);
  if (!options.csv_path.empty()) {
    fs::resize_file(options.csv_path,
                    count_csv_records(options.csv_path, frontier + 1).offset);
  }
  fs::resize_file(options.checkpoint_path,
                  count_lines(options.checkpoint_path, frontier + 1).offset);
  return plan;
}

/// Folds one replication into the aggregate with exactly the arithmetic the
/// serial driver used, so replaying runs in order reproduces it bitwise.
void accumulate(Aggregate& agg, const SweepRun& run) {
  accumulate_run(agg, run.record, run.burned_fraction, run.decay_rate);
}

}  // namespace

SweepScheduler::SweepScheduler(SweepOptions options)
    : options_(std::move(options)) {}

SweepResult SweepScheduler::run(const std::vector<SweepPoint>& grid) const {
  const auto start = std::chrono::steady_clock::now();

  for (const SweepPoint& point : grid) {
    if (point.implicit_factory && point.runner) {
      throw std::invalid_argument(
          "sweep: point '" + point.label +
          "' sets both implicit_factory and runner (a PointRunner consumes "
          "a materialized graph, which an implicit point never builds)");
    }
  }

  // Global run ranks: point p, replication r -> offsets[p] + r.
  std::vector<std::size_t> offsets(grid.size() + 1, 0);
  for (std::size_t p = 0; p < grid.size(); ++p) {
    offsets[p + 1] = offsets[p] + grid[p].config.replications;
  }
  const std::size_t total_runs = offsets.back();

  // Shard slice: this process executes only shard_ranks (all ranks when
  // unsharded).  Everything downstream -- streams, checkpoint lines,
  // result.runs -- is indexed by the *local* rank, i.e. the position in
  // shard_ranks; seeds still derive from the global (point, replication).
  const ShardSpec shard{options_.shard_index, std::max(1u, options_.shard_count)};
  const bool sharded = shard.count > 1;
  const std::vector<std::size_t> shard_ranks = shard_run_ranks(total_runs, shard);
  // Local rank offsets per point: point p owns locals [lo[p], lo[p+1]).
  std::vector<std::size_t> local_offsets(grid.size() + 1, 0);
  {
    std::size_t p = 0;
    for (std::size_t l = 0; l < shard_ranks.size(); ++l) {
      while (shard_ranks[l] >= offsets[p + 1]) local_offsets[++p] = l;
    }
    while (p < grid.size()) local_offsets[++p] = shard_ranks.size();
  }

  if (sharded && options_.jsonl_path.empty()) {
    throw std::invalid_argument(
        "sweep: --shard requires a JSONL stream (the shards' streams are "
        "what `saer aggregate` folds back together; without one this "
        "slice's work would be unrecoverable)");
  }
  const bool checkpointing = !options_.checkpoint_path.empty();
  if (checkpointing && options_.jsonl_path.empty()) {
    throw std::invalid_argument(
        "sweep: checkpoint_path requires jsonl_path (finished runs are "
        "reloaded from the JSONL archive on resume)");
  }
  // Fold the shard slice into the fingerprint: a shard's checkpoint names
  // both its index and count, so no other slice (nor an unsharded run) can
  // splice it.
  const std::uint64_t fingerprint =
      checkpointing ? shard_checkpoint_fingerprint(grid_fingerprint(grid), shard)
                    : 0;

  ResumePlan resume;
  if (checkpointing) {
    resume = plan_resume(options_, offsets, grid, shard_ranks, fingerprint);
  }
  const std::size_t frontier = resume.frontier;

  SweepResult result;
  result.runs.resize(shard_ranks.size());
  result.aggregates.resize(grid.size());
  result.resumed_runs = frontier;
  result.total_runs = total_runs;
  for (std::size_t i = 0; i < frontier; ++i) {
    result.runs[i] = from_sweep_row(resume.rows[i]);
  }

  // Cooperative stop: polled once per pending run, right before it starts.
  // One byte per run marks completion so an interrupted result aggregates
  // only the runs that actually finished (each task writes only its own
  // flag, like its SweepRun slot).
  const std::function<bool()>& stop = options_.stop_requested;
  const auto stopping = [&stop] { return stop && stop(); };
  std::vector<unsigned char> completed(shard_ranks.size(), 0);
  for (std::size_t i = 0; i < frontier; ++i) completed[i] = 1;

  ThreadPool pool(options_.jobs);
  result.jobs = pool.size();

  // Arbitrate the core budget between sweep-level and run-level
  // parallelism: with `active` workers actually busy, each leased
  // workspace's round loop is capped to budget / active intra-run threads
  // (>= 1), so `--jobs` composes with the engine's team instead of
  // oversubscribing.  `active` counts pending runs, not pool width -- a
  // grid with one giant pending run keeps the full budget for that run.
  // Scheduling-only: results are bit-identical for any cap.
  const std::size_t pending_runs =
      shard_ranks.size() > frontier ? shard_ranks.size() - frontier : 1;
  const auto active_workers = static_cast<int>(std::min<std::size_t>(
      pool.size(), std::max<std::size_t>(1, pending_runs)));
  const IntraRunThreadCap intra_cap(
      std::max(1, configured_threads() / active_workers));

  // Phase 1: build shared topologies (resample_graph = false), one build per
  // unique (topology_key, graph seed) -- or per point when the key is 0.
  // The first point claiming a key supplies the factory; sharing a key
  // asserts the factories draw from the same distribution.  Points with no
  // pending replication in this shard (all resumed, or sliced away) need no
  // graph.
  std::vector<std::shared_ptr<const BipartiteGraph>> shared_graphs(grid.size());
  {
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> owner;
    std::vector<std::size_t> alias(grid.size(), SIZE_MAX);
    for (std::size_t p = 0; p < grid.size(); ++p) {
      const SweepPoint& point = grid[p];
      if (local_offsets[p + 1] <= frontier ||
          local_offsets[p + 1] == local_offsets[p]) {
        continue;  // nothing pending here
      }
      if (point.config.resample_graph) continue;
      // Implicit points never materialize: their tasks rebuild the
      // descriptor (a few words) per replication from the same seed.
      if (point.implicit_factory) continue;
      const std::uint64_t seed = replication_seed(point.config.master_seed, 1);
      if (point.topology_key != 0) {
        const auto [it, inserted] =
            owner.emplace(std::make_pair(point.topology_key, seed), p);
        if (!inserted) {
          alias[p] = it->second;
          continue;
        }
      }
      pool.submit([&point, seed, &slot = shared_graphs[p]] {
        slot = std::make_shared<const BipartiteGraph>(point.factory(seed));
      });
    }
    pool.wait_idle();
    for (std::size_t p = 0; p < grid.size(); ++p) {
      if (alias[p] != SIZE_MAX) shared_graphs[p] = shared_graphs[alias[p]];
    }
  }

  std::optional<OrderedSink> sink;
  if (!options_.csv_path.empty() || !options_.jsonl_path.empty()) {
    OrderedSink::Config config;
    config.options = &options_;
    config.start_index = frontier;
    config.total_runs = shard_ranks.size();
    config.fingerprint = fingerprint;
    sink.emplace(config);
  }

  // Phase 2: every pending replication of this shard is an independent task
  // writing its own slot.  Tasks lease engine workspaces from a shared
  // pool, so at most one workspace exists per worker and replications
  // allocate no run buffers.  Runs below the resume frontier were reloaded,
  // not re-run; runs of other shards are not touched at all.
  WorkspacePool workspaces;
  const bool keep_traces = options_.keep_traces;
  for (std::size_t p = 0; p < grid.size(); ++p) {
    const SweepPoint& point = grid[p];
    const std::shared_ptr<const BipartiteGraph>& shared = shared_graphs[p];
    for (std::size_t index = std::max(local_offsets[p], frontier);
         index < local_offsets[p + 1]; ++index) {
      const auto rep =
          static_cast<std::uint32_t>(shard_ranks[index] - offsets[p]);
      SweepRun& slot = result.runs[index];
      unsigned char& done = completed[index];
      pool.submit([&point, &slot, &sink, &workspaces, &stopping, &done, shared,
                   p, rep, index, keep_traces] {
        if (stopping()) return;  // drain: launched tasks finish, rest skip
        const std::uint64_t protocol_seed =
            replication_seed(point.config.master_seed, 2ULL * rep);
        const std::uint64_t graph_seed =
            replication_seed(point.config.master_seed, 2ULL * rep + 1);

        ProtocolParams params = point.config.params;
        params.seed = protocol_seed;
        RunResult res;
        std::uint64_t num_servers = 0;
        if (point.implicit_factory) {
          // Same topology-seed policy as the stored path: per-replication
          // seed when resampling, the shared-build seed otherwise.  The
          // recorded graph_seed stays the replication's derived seed either
          // way, exactly as for stored points.
          const std::uint64_t topo_seed =
              point.config.resample_graph
                  ? graph_seed
                  : replication_seed(point.config.master_seed, 1);
          const ImplicitRegularTopology topo =
              point.implicit_factory(topo_seed);
          num_servers = topo.num_servers();
          const WorkspaceLease lease(workspaces);
          res = run_protocol(topo, params, *lease);
        } else {
          std::optional<BipartiteGraph> fresh;
          if (!shared) fresh = point.factory(graph_seed);
          const BipartiteGraph& graph = shared ? *shared : *fresh;
          num_servers = graph.num_servers();
          if (point.runner) {
            res = point.runner(graph, params, rep);
          } else {
            const WorkspaceLease lease(workspaces);
            res = run_protocol(graph, params, *lease);
          }
        }

        slot.point = static_cast<std::uint32_t>(p);
        slot.replication = rep;
        slot.protocol_seed = protocol_seed;
        slot.graph_seed = graph_seed;
        slot.num_servers = num_servers;
        slot.burned_fraction = static_cast<double>(res.burned_servers) /
                               static_cast<double>(num_servers);
        const double nd = static_cast<double>(res.total_balls);
        const auto heavy_threshold =
            static_cast<std::uint64_t>(nd / std::max(1.0, std::log(nd)));
        slot.decay_rate = alive_decay_rate(res.trace, heavy_threshold);
        slot.record = RunRecord::from_result(params, res);
        if (!keep_traces) {
          slot.record.trace.clear();
          slot.record.trace.shrink_to_fit();
        }
        if (sink) sink->push(index, slot, point.label);
        done = 1;
      });
    }
  }
  pool.wait_idle();

  // Replay slots in (point, replication) order: bit-identical to serial.
  // A shard folds only its own runs; `saer aggregate` over every shard's
  // stream replays the union in the same global order, restoring full-grid
  // aggregates bit-exactly.  After a drain, only finished runs fold in.
  for (std::size_t p = 0; p < grid.size(); ++p) {
    for (std::size_t i = local_offsets[p]; i < local_offsets[p + 1]; ++i) {
      if (!completed[i]) continue;
      accumulate(result.aggregates[p], result.runs[i]);
    }
  }
  result.interrupted = stopping();
  result.completed_runs = 0;
  for (const unsigned char flag : completed) result.completed_runs += flag;

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace saer
