#include "sim/sweep.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/metrics.hpp"
#include "core/workspace.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace saer {

std::uint64_t topology_cache_key(const std::string& generator, std::uint64_t n,
                                 std::uint64_t extra) {
  std::uint64_t h = 0x5eed'0f'70'7014ULL;
  for (const char ch : generator) {
    h = mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(ch)));
  }
  h = mix64(h, n);
  h = mix64(h, extra);
  return h ? h : 1;  // keep 0 reserved for "no cross-point reuse"
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

/// Streams per-run rows to CSV/JSONL in global run order regardless of task
/// completion order: completed rows are buffered until every earlier row
/// has been written, so the files are byte-identical for any worker count.
class OrderedSink {
 public:
  OrderedSink(const std::string& csv_path, const std::string& jsonl_path) {
    if (!csv_path.empty()) {
      csv_.emplace(csv_path);
      auto columns = run_record_columns();
      std::vector<std::string> header = {"point",       "label",
                                         "replication", "graph_seed",
                                         "num_servers", "burned_fraction",
                                         "decay_rate"};
      header.insert(header.end(), columns.begin(), columns.end());
      csv_->header(header);
    }
    if (!jsonl_path.empty()) {
      jsonl_.emplace(jsonl_path);
      if (!*jsonl_) {
        throw std::runtime_error("sweep: cannot open JSONL sink " + jsonl_path);
      }
    }
  }

  [[nodiscard]] bool enabled() const { return csv_ || jsonl_; }

  /// Called by a task after it fully populated `run`; `index` is the global
  /// (point, replication) rank.  Thread-safe.
  void push(std::size_t index, const SweepRun& run, const std::string& label) {
    std::lock_guard lock(mutex_);
    pending_.emplace(index, Row{format_csv(run, label), format_json(run, label)});
    while (!pending_.empty() && pending_.begin()->first == next_) {
      const Row& row = pending_.begin()->second;
      if (csv_) csv_->row(row.cells);
      if (jsonl_) *jsonl_ << row.json << '\n';
      pending_.erase(pending_.begin());
      ++next_;
    }
  }

 private:
  struct Row {
    std::vector<std::string> cells;
    std::string json;
  };

  [[nodiscard]] std::vector<std::string> format_csv(const SweepRun& run,
                                                    const std::string& label) {
    if (!csv_) return {};
    std::vector<std::string> cells = {std::to_string(run.point),
                                      label,
                                      std::to_string(run.replication),
                                      std::to_string(run.graph_seed),
                                      std::to_string(run.num_servers),
                                      format_double_compact(run.burned_fraction),
                                      format_double_compact(run.decay_rate)};
    const auto record = run_record_cells(run.record);
    cells.insert(cells.end(), record.begin(), record.end());
    return cells;
  }

  [[nodiscard]] std::string format_json(const SweepRun& run,
                                        const std::string& label) {
    if (!jsonl_) return {};
    std::string out = "{\"point\":" + std::to_string(run.point);
    out += ",\"label\":\"" + json_escape(label) + '"';
    out += ",\"replication\":" + std::to_string(run.replication);
    out += ",\"graph_seed\":" + std::to_string(run.graph_seed);
    out += ",\"num_servers\":" + std::to_string(run.num_servers);
    out += ",\"burned_fraction\":" + std::string(format_double_compact(run.burned_fraction));
    out += ",\"decay_rate\":" + std::string(format_double_compact(run.decay_rate));
    out += ",\"run\":" + run_record_json(run.record) + '}';
    return out;
  }

  std::mutex mutex_;
  std::optional<CsvWriter> csv_;
  std::optional<std::ofstream> jsonl_;
  std::map<std::size_t, Row> pending_;
  std::size_t next_ = 0;
};

/// Folds one replication into the aggregate with exactly the arithmetic the
/// serial driver used, so replaying runs in order reproduces it bitwise.
void accumulate(Aggregate& agg, const SweepRun& run) {
  const RunRecord& rec = run.record;
  if (rec.completed) {
    ++agg.completed;
    agg.rounds.add(static_cast<double>(rec.rounds));
    agg.work_per_ball.add(rec.total_balls
                              ? static_cast<double>(rec.work_messages) /
                                    static_cast<double>(rec.total_balls)
                              : 0.0);
  } else {
    ++agg.failed;
  }
  agg.max_load.add(static_cast<double>(rec.max_load));
  agg.burned_fraction.add(run.burned_fraction);
  agg.decay_rate.add(run.decay_rate);
}

}  // namespace

SweepScheduler::SweepScheduler(SweepOptions options)
    : options_(std::move(options)) {}

SweepResult SweepScheduler::run(const std::vector<SweepPoint>& grid) const {
  const auto start = std::chrono::steady_clock::now();

  // Global run ranks: point p, replication r -> offsets[p] + r.
  std::vector<std::size_t> offsets(grid.size() + 1, 0);
  for (std::size_t p = 0; p < grid.size(); ++p) {
    offsets[p + 1] = offsets[p] + grid[p].config.replications;
  }
  const std::size_t total_runs = offsets.back();

  SweepResult result;
  result.runs.resize(total_runs);
  result.aggregates.resize(grid.size());

  ThreadPool pool(options_.jobs);
  result.jobs = pool.size();

  // Phase 1: build shared topologies (resample_graph = false), one build per
  // unique (topology_key, graph seed) -- or per point when the key is 0.
  // The first point claiming a key supplies the factory; sharing a key
  // asserts the factories draw from the same distribution.
  std::vector<std::shared_ptr<const BipartiteGraph>> shared_graphs(grid.size());
  {
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> owner;
    std::vector<std::size_t> alias(grid.size(), SIZE_MAX);
    for (std::size_t p = 0; p < grid.size(); ++p) {
      const SweepPoint& point = grid[p];
      if (point.config.resample_graph) continue;
      const std::uint64_t seed = replication_seed(point.config.master_seed, 1);
      if (point.topology_key != 0) {
        const auto [it, inserted] =
            owner.emplace(std::make_pair(point.topology_key, seed), p);
        if (!inserted) {
          alias[p] = it->second;
          continue;
        }
      }
      pool.submit([&point, seed, &slot = shared_graphs[p]] {
        slot = std::make_shared<const BipartiteGraph>(point.factory(seed));
      });
    }
    pool.wait_idle();
    for (std::size_t p = 0; p < grid.size(); ++p) {
      if (alias[p] != SIZE_MAX) shared_graphs[p] = shared_graphs[alias[p]];
    }
  }

  std::optional<OrderedSink> sink;
  if (!options_.csv_path.empty() || !options_.jsonl_path.empty()) {
    sink.emplace(options_.csv_path, options_.jsonl_path);
  }

  // Phase 2: every replication is an independent task writing its own slot.
  // Tasks lease engine workspaces from a shared pool, so at most one
  // workspace exists per worker and replications allocate no run buffers.
  WorkspacePool workspaces;
  const bool keep_traces = options_.keep_traces;
  for (std::size_t p = 0; p < grid.size(); ++p) {
    const SweepPoint& point = grid[p];
    const std::shared_ptr<const BipartiteGraph>& shared = shared_graphs[p];
    for (std::uint32_t rep = 0; rep < point.config.replications; ++rep) {
      const std::size_t index = offsets[p] + rep;
      SweepRun& slot = result.runs[index];
      pool.submit([&point, &slot, &sink, &workspaces, shared, p, rep, index,
                   keep_traces] {
        const std::uint64_t protocol_seed =
            replication_seed(point.config.master_seed, 2ULL * rep);
        const std::uint64_t graph_seed =
            replication_seed(point.config.master_seed, 2ULL * rep + 1);

        std::optional<BipartiteGraph> fresh;
        if (!shared) fresh = point.factory(graph_seed);
        const BipartiteGraph& graph = shared ? *shared : *fresh;

        ProtocolParams params = point.config.params;
        params.seed = protocol_seed;
        const WorkspaceLease lease(workspaces);
        const RunResult res = run_protocol(graph, params, *lease);

        slot.point = static_cast<std::uint32_t>(p);
        slot.replication = rep;
        slot.protocol_seed = protocol_seed;
        slot.graph_seed = graph_seed;
        slot.num_servers = graph.num_servers();
        slot.burned_fraction = static_cast<double>(res.burned_servers) /
                               static_cast<double>(graph.num_servers());
        const double nd = static_cast<double>(res.total_balls);
        const auto heavy_threshold =
            static_cast<std::uint64_t>(nd / std::max(1.0, std::log(nd)));
        slot.decay_rate = alive_decay_rate(res.trace, heavy_threshold);
        slot.record = RunRecord::from_result(params, res);
        if (!keep_traces) {
          slot.record.trace.clear();
          slot.record.trace.shrink_to_fit();
        }
        if (sink) sink->push(index, slot, point.label);
      });
    }
  }
  pool.wait_idle();

  // Replay slots in (point, replication) order: bit-identical to serial.
  for (std::size_t p = 0; p < grid.size(); ++p) {
    for (std::size_t i = offsets[p]; i < offsets[p + 1]; ++i) {
      accumulate(result.aggregates[p], result.runs[i]);
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace saer
