// Trusted-server marketplace: the trust scenario from the paper's
// introduction (Section 1.1(i)).  Buyers (clients) only send order flow to
// brokers (servers) inside the one clearing group they trust; brokers cap
// how many orders they accept.  We run both SAER and RAES and show the
// trade-off against a sequential greedy that requires brokers to disclose
// their current book size -- exactly the information leak SAER avoids.
//
//   ./examples/trusted_marketplace [--n 8192] [--groups 8] [--delta 64]
//                                  [--d 2] [--c 3] [--seed 11]

#include <cstdio>

#include "baselines/sequential_greedy.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace saer;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_uint("n", 8192));
  const auto groups = static_cast<std::uint32_t>(args.get_uint("groups", 8));
  const auto delta = static_cast<std::uint32_t>(
      args.get_uint("delta", std::min<std::uint64_t>(64, n / groups)));
  const auto d = static_cast<std::uint32_t>(args.get_uint("d", 2));
  const double c = args.get_double("c", 3.0);
  const std::uint64_t seed = args.get_uint("seed", 11);

  const BipartiteGraph market = trust_groups(n, delta, groups, seed);
  std::printf("marketplace: %s\n", describe(market).c_str());
  std::printf("%u clearing groups; every buyer trusts %u brokers in one group\n",
              groups, delta);

  ProtocolParams params;
  params.d = d;
  params.c = c;
  params.seed = seed;

  params.protocol = Protocol::kSaer;
  const RunResult saer = run_protocol(market, params);
  check_result(market, params, saer);
  params.protocol = Protocol::kRaes;
  const RunResult raes = run_protocol(market, params);
  check_result(market, params, raes);
  const AllocationResult greedy = sequential_greedy_k(market, d, 2, seed);

  std::printf("\n%-22s %10s %12s %10s %s\n", "algorithm", "rounds",
              "msgs/order", "max book", "broker discloses load?");
  std::printf("%-22s %10u %12.2f %10llu %s\n", "SAER", saer.rounds,
              saer.work_per_ball(),
              static_cast<unsigned long long>(saer.max_load), "no (1 bit)");
  std::printf("%-22s %10u %12.2f %10llu %s\n", "RAES", raes.rounds,
              raes.work_per_ball(),
              static_cast<unsigned long long>(raes.max_load), "no (1 bit)");
  std::printf("%-22s %10s %12.2f %10llu %s\n", "sequential greedy-2",
              "(n*d seq)",
              static_cast<double>(greedy.probes) /
                  static_cast<double>(saer.total_balls),
              static_cast<unsigned long long>(greedy.max_load),
              "YES (exact load)");

  std::printf(
      "\norder book cap c*d = %llu enforced by SAER/RAES by construction; "
      "greedy gets lower load but leaks every broker's book size and is "
      "inherently sequential.\n",
      static_cast<unsigned long long>(params.capacity()));
  return (saer.completed && raes.completed) ? 0 : 1;
}
