// Quickstart: build a constrained topology, run SAER, inspect the result.
//
//   ./examples/quickstart [--n 4096] [--d 2] [--c 4] [--seed 1]
//
// This is the 30-second tour of the public API:
//   1. generate a bipartite client-server graph (graph/generators.hpp)
//   2. configure the protocol           (core/protocol.hpp)
//   3. run it                           (core/engine.hpp)
//   4. read off loads / rounds / work   (core/metrics.hpp)

#include <cstdio>

#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace saer;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_uint("n", 4096));
  const auto d = static_cast<std::uint32_t>(args.get_uint("d", 2));
  const double c = args.get_double("c", 4.0);
  const std::uint64_t seed = args.get_uint("seed", 1);

  // 1. A random Delta-regular topology at the theorem's degree scale
  //    Delta = log2(n)^2 -- every client can reach only Delta servers.
  const BipartiteGraph graph = random_regular(n, theorem_degree(n), seed);
  std::printf("topology: %s\n", describe(graph).c_str());

  // 2. SAER with capacity c*d per server.
  ProtocolParams params;
  params.protocol = Protocol::kSaer;
  params.d = d;
  params.c = c;
  params.seed = seed;

  // 3. Run to completion.
  const RunResult result = run_protocol(graph, params);

  // 4. Results.
  std::printf("completed: %s in %u rounds\n",
              result.completed ? "yes" : "NO", result.rounds);
  std::printf("balls: %llu, work: %llu messages (%.2f per ball)\n",
              static_cast<unsigned long long>(result.total_balls),
              static_cast<unsigned long long>(result.work_messages),
              result.work_per_ball());
  const LoadSummary loads = summarize_loads(result.loads, params.capacity());
  std::printf("max load: %llu (bound c*d = %llu), mean %.2f, p99 %lld\n",
              static_cast<unsigned long long>(loads.max),
              static_cast<unsigned long long>(params.capacity()), loads.mean,
              static_cast<long long>(loads.p99));
  std::printf("burned servers: %llu of %u\n",
              static_cast<unsigned long long>(result.burned_servers),
              graph.num_servers());

  // The engine's invariants can always be audited:
  check_result(graph, params, result);
  std::printf("check_result: all invariants hold\n");
  return result.completed ? 0 : 1;
}
