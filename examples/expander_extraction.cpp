// Expander extraction: the application that motivated RAES (Section 1.1,
// footnote 5).  Start from a dense-ish communication graph, run the
// protocol once with a constant request number d, and keep only the
// accepted edges: the result is a bounded-degree subgraph (client degree d,
// server degree <= c*d) that inherits the expansion of the host graph.
// Useful when a system needs a sparse overlay with guaranteed conductance
// -- gossip substrates, sparsified storage overlays, etc.
//
//   ./examples/expander_extraction [--n 4096] [--d 6] [--c 3] [--seed 2]

#include <cstdio>

#include "core/engine.hpp"
#include "core/subgraph.hpp"
#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "graph/spectral.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace saer;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_uint("n", 4096));
  const auto d = static_cast<std::uint32_t>(args.get_uint("d", 6));
  const double c = args.get_double("c", 3.0);
  const std::uint64_t seed = args.get_uint("seed", 2);

  const BipartiteGraph host = random_regular(n, theorem_degree(n), seed);
  std::printf("host graph:  %s\n", describe(host).c_str());

  ProtocolParams params;
  params.d = d;
  params.c = c;
  params.seed = seed;
  const RunResult res = run_protocol(host, params);
  if (!res.completed) {
    std::printf("protocol did not complete; raise --c\n");
    return 1;
  }
  std::printf("SAER placed %llu edges in %u rounds (%.2f messages/edge)\n",
              static_cast<unsigned long long>(res.total_balls), res.rounds,
              res.work_per_ball());

  const BipartiteGraph overlay = assignment_subgraph(host, res);
  const SubgraphStats stats = subgraph_stats(host, overlay);
  std::printf("overlay:     %s\n", describe(overlay).c_str());
  std::printf("degree bounds: client <= %u (= d), server <= %u (<= c*d = %llu)\n",
              stats.client_degree_max, stats.server_degree_max,
              static_cast<unsigned long long>(params.capacity()));
  std::printf("kept %.2f%% of the host edges\n", 100.0 * stats.edge_fraction);

  const SpectralEstimate host_spec = estimate_lambda2(host);
  const SpectralEstimate overlay_spec = estimate_lambda2(overlay);
  std::printf("spectral gap (1 - lambda2 of the client-projection walk):\n");
  std::printf("  host:    %.4f\n", host_spec.gap());
  std::printf("  overlay: %.4f %s\n", overlay_spec.gap(),
              overlay_spec.gap() > 0.25
                  ? "-> a bounded-degree expander"
                  : "(raise --d for a larger gap)");
  return 0;
}
