// CDN edge assignment: the proximity scenario from the paper's introduction
// (Section 1.1(ii)).  Clients and edge caches live on a 2-D torus (think
// metro areas); each client may only fetch from caches within a fixed
// radius.  SAER assigns each client's d parallel connections to caches so
// no cache exceeds its connection budget, using only accept/reject bits --
// caches never reveal their load (the privacy property of Section 2.2).
//
//   ./examples/cdn_edge_assignment [--side 128] [--radius 7] [--d 2]
//                                  [--c 3] [--seed 7]

#include <cstdio>

#include "baselines/one_shot.hpp"
#include "core/engine.hpp"
#include "core/metrics.hpp"
#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"

int main(int argc, char** argv) {
  using namespace saer;
  const CliArgs args(argc, argv);
  const auto side = static_cast<NodeId>(args.get_uint("side", 128));
  const auto radius = static_cast<std::uint32_t>(args.get_uint("radius", 7));
  const auto d = static_cast<std::uint32_t>(args.get_uint("d", 2));
  const double c = args.get_double("c", 3.0);
  const std::uint64_t seed = args.get_uint("seed", 7);

  const BipartiteGraph city = grid_proximity(side, radius);
  std::printf("metro grid %ux%u: %s\n", side, side, describe(city).c_str());
  std::printf("each client reaches the (2r+1)^2 = %u caches within radius %u\n",
              (2 * radius + 1) * (2 * radius + 1), radius);

  ProtocolParams params;
  params.d = d;
  params.c = c;
  params.seed = seed;
  const RunResult saer = run_protocol(city, params);
  check_result(city, params, saer);

  // Compare with the naive policy: every connection to a uniform random
  // nearby cache, no admission control.
  const AllocationResult naive = one_shot_random(city, d, seed);

  std::printf("\nSAER admission control:\n");
  std::printf("  completed in %u rounds, %.2f messages per connection\n",
              saer.rounds, saer.work_per_ball());
  std::printf("  max cache load %llu (budget c*d = %llu)\n",
              static_cast<unsigned long long>(saer.max_load),
              static_cast<unsigned long long>(params.capacity()));
  std::printf("naive random placement:\n");
  std::printf("  max cache load %llu (unbounded policy)\n",
              static_cast<unsigned long long>(naive.max_load));

  std::printf("\ncache load histogram under SAER (load  #caches  bar):\n%s",
              load_histogram(saer.loads).ascii(40).c_str());
  return saer.completed ? 0 : 1;
}
