// Online arrivals: the dynamic scenario of Section 4 (future work).
// Clients join a ring-proximity system in waves while a small fraction of
// servers fails permanently each round; SAER keeps running unchanged.
// Demonstrates the metastable regime: bounded backlog, stable per-cohort
// assignment latency, and the load bound never violated.
//
//   ./examples/online_arrivals [--n 8192] [--waves 64] [--churn 0.0005]
//                              [--d 2] [--c 4] [--seed 3]

#include <algorithm>
#include <cstdio>

#include "core/dynamic.hpp"
#include "graph/degree_stats.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace saer;
  const CliArgs args(argc, argv);
  const auto n = static_cast<NodeId>(args.get_uint("n", 8192));
  const auto waves = static_cast<std::uint32_t>(args.get_uint("waves", 64));
  const double churn = args.get_double("churn", 0.0005);
  const auto d = static_cast<std::uint32_t>(args.get_uint("d", 2));
  const double c = args.get_double("c", 4.0);
  const std::uint64_t seed = args.get_uint("seed", 3);

  const BipartiteGraph graph = ring_proximity(n, theorem_degree(n));
  std::printf("system: %s\n", describe(graph).c_str());

  DynamicParams params;
  params.base.d = d;
  params.base.c = c;
  params.base.seed = seed;
  params.arrivals_per_round = std::max<std::uint32_t>(1, n / waves);
  params.server_failure_rate = churn;

  std::printf("arrivals: %u clients per round over ~%u waves; churn %.4f%% "
              "of servers fail per round\n",
              params.arrivals_per_round, waves, churn * 100.0);

  const DynamicResult res = run_dynamic(graph, params);

  std::uint64_t backlog_peak = 0;
  for (std::uint64_t b : res.backlog_series)
    backlog_peak = std::max(backlog_peak, b);

  std::printf("\nran %u rounds; %s\n", res.rounds,
              res.completed ? "all balls assigned"
                            : "some balls left unassigned (expected under heavy churn)");
  std::printf("backlog peak: %llu of %llu balls (%.1f%%)\n",
              static_cast<unsigned long long>(backlog_peak),
              static_cast<unsigned long long>(res.total_balls),
              100.0 * static_cast<double>(backlog_peak) /
                  static_cast<double>(res.total_balls));
  std::printf("assignment latency (rounds): mean %.2f, p50 %u, p99 %u, max %u\n",
              res.latency_mean, res.latency_p50, res.latency_p99,
              res.latency_max);
  std::printf("max load %llu (bound c*d = %llu); burned %llu, failed %llu "
              "of %u servers\n",
              static_cast<unsigned long long>(res.max_load),
              static_cast<unsigned long long>(params.base.capacity()),
              static_cast<unsigned long long>(res.burned_servers),
              static_cast<unsigned long long>(res.failed_servers),
              graph.num_servers());
  return res.completed ? 0 : 1;
}
